// Package workload is the generative workload layer: declarative
// scenario specs (versioned JSON files) that compose deterministic
// workload generators — heavy-tailed session lengths, diurnal arrival
// curves, Zipf-popular lookup targets, flash-crowd join bursts, and
// replay of recorded join/leave traces — with the fixed-rate churn and
// traffic knobs of the paper's §5.3 methodology. A spec file opens a new
// experiment axis without recompiling: the CLIs load it with
// -scenario <file>, kadserve accepts it embedded in a query body, and
// the built-in presets are committed as spec files resolved through the
// same path.
//
// Every generator draws from its own splitmix64-derived random stream
// (seeded from the run seed, one stream tag per generator), and all
// actions run inside the single-goroutine event kernel, so results are
// byte-identical for any worker count — the same contract the rest of
// the experiment pipeline is pinned to.
package workload

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SpecVersion is the only supported spec format version. Specs must
// declare it explicitly so a future format change can never silently
// reinterpret an old file.
const SpecVersion = 1

// Spec is one scenario spec file: an experiment identifier plus the runs
// that regenerate it. Defaults apply to every run field a run leaves
// unset; a run's own fields win. Decoding is strict — unknown fields are
// a load error, never silently dropped knobs.
type Spec struct {
	// Version must be SpecVersion.
	Version int `json:"version"`
	// ID is the experiment tag ("figure2", "flash-crowd", ...); it names
	// the JSON artefact exactly like a compiled-in experiment id.
	ID string `json:"id"`
	// Title describes the experiment in reports.
	Title string `json:"title,omitempty"`
	// Scale optionally pins the resolution scale (paper, reduced, tiny);
	// empty defers to the loader (the CLI -scale flag).
	Scale string `json:"scale,omitempty"`
	// Defaults seeds every run's unset fields.
	Defaults *RunSpec `json:"defaults,omitempty"`
	// Runs are the experiment's configurations.
	Runs []RunSpec `json:"runs"`
}

// RunSpec is the declarative form of one run. Every field is a pointer
// (or a reference type) so that "unset — take the scale/paper default"
// and "explicitly zero" stay distinguishable: a spec can turn lookups
// off without the config layer coercing the 0 back to the paper's 10.
// Durations are simulated minutes.
type RunSpec struct {
	// Name labels the run; required on every resolved run.
	Name string `json:"name,omitempty"`
	// SeedOffset is added to the loader's base seed (default 0).
	SeedOffset *int64 `json:"seed_offset,omitempty"`

	Size      *int    `json:"size,omitempty"`
	K         *int    `json:"k,omitempty"`
	Alpha     *int    `json:"alpha,omitempty"`
	Bits      *int    `json:"bits,omitempty"`
	Staleness *int    `json:"staleness,omitempty"`
	Loss      *string `json:"loss,omitempty"`  // none, low, med, high
	Churn     *string `json:"churn,omitempty"` // "add/remove" per minute

	// ChurnMinutes sets the churn-phase length; DrainChurn instead derives
	// the paper's Sim A-D drain window from the network size. At most one
	// may be set.
	ChurnMinutes *float64 `json:"churn_minutes,omitempty"`
	DrainChurn   *bool    `json:"drain_churn,omitempty"`

	// Traffic toggles the per-node lookup/store workload; the per-minute
	// rates accept explicit 0 ("lookups off, stores on") independently.
	Traffic          *bool `json:"traffic,omitempty"`
	LookupsPerMinute *int  `json:"lookups_per_minute,omitempty"`
	StoresPerMinute  *int  `json:"stores_per_minute,omitempty"`
	KeyPool          *int  `json:"key_pool,omitempty"`

	SetupMinutes     *float64 `json:"setup_minutes,omitempty"`
	StabilizeMinutes *float64 `json:"stabilize_minutes,omitempty"`
	SnapshotMinutes  *float64 `json:"snapshot_minutes,omitempty"`
	SampleFraction   *float64 `json:"sample_fraction,omitempty"`

	// Attack rides the churn window (see the attack package).
	Attack *AttackSpec `json:"attack,omitempty"`

	// The generative layer.
	Sessions    *SessionsSpec    `json:"sessions,omitempty"`
	Arrivals    *ArrivalsSpec    `json:"arrivals,omitempty"`
	Popularity  *PopularitySpec  `json:"popularity,omitempty"`
	FlashCrowds []FlashCrowdSpec `json:"flash_crowds,omitempty"`
	Trace       *TraceSpec       `json:"trace,omitempty"`
}

// AttackSpec is the declarative adversary. Omitted fields take the
// scale's canonical attack (budget half the network, spread evenly over
// the strikes that fit the window).
type AttackSpec struct {
	Strategy        string  `json:"strategy"` // random, degree, cutset, eclipse
	Budget          *int    `json:"budget,omitempty"`
	Kills           *int    `json:"kills,omitempty"`
	IntervalMinutes float64 `json:"interval_minutes,omitempty"`
}

// SessionsSpec draws heavy-tailed session lengths for generatively
// joined nodes (arrivals and flash crowds): each join schedules its own
// departure after a sampled lifetime.
type SessionsSpec struct {
	// Dist is "lognormal" or "pareto".
	Dist string `json:"dist"`
	// MeanMinutes and Sigma parameterize the lognormal: the distribution
	// mean is MeanMinutes, Sigma its log-space shape (default 1).
	MeanMinutes float64 `json:"mean_minutes,omitempty"`
	Sigma       float64 `json:"sigma,omitempty"`
	// MinMinutes and Alpha parameterize the Pareto: scale x_m (the
	// minimum session) and tail index alpha.
	MinMinutes float64 `json:"min_minutes,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
}

// ArrivalsSpec generates node joins through the churn window as a
// per-minute Poisson process, optionally modulated by a diurnal curve.
type ArrivalsSpec struct {
	RatePerMinute float64      `json:"rate_per_minute"`
	Diurnal       *DiurnalSpec `json:"diurnal,omitempty"`
}

// DiurnalSpec modulates an arrival rate sinusoidally over simulated
// time: rate(t) = base * (1 + Amplitude * sin(2*pi*(t-Phase)/Period)),
// clamped at zero.
type DiurnalSpec struct {
	PeriodMinutes float64 `json:"period_minutes"`
	Amplitude     float64 `json:"amplitude"`
	PhaseMinutes  float64 `json:"phase_minutes,omitempty"`
}

// PopularitySpec skews lookup/store key selection: keys are drawn
// Zipf(s, v) over the key pool instead of uniformly, concentrating the
// workload on a popular head exactly like measured KAD object traffic.
type PopularitySpec struct {
	// ZipfS is the exponent (> 1).
	ZipfS float64 `json:"zipf_s"`
	// ZipfV offsets the ranks (>= 1; default 1).
	ZipfV float64 `json:"zipf_v,omitempty"`
}

// FlashCrowdSpec injects a join burst: Joins nodes arrive at uniformly
// random instants within [AtMinutes, AtMinutes+WindowMinutes). Sessions,
// when set, gives the crowd its own lifetime distribution (otherwise the
// run's Sessions applies; with neither, crowd nodes stay).
type FlashCrowdSpec struct {
	AtMinutes     float64       `json:"at_minutes"`
	Joins         int           `json:"joins"`
	WindowMinutes float64       `json:"window_minutes,omitempty"` // default 1
	Sessions      *SessionsSpec `json:"sessions,omitempty"`
}

// TraceSpec replays a recorded join/leave trace. Path names a JSONL file
// (one TraceEvent per line, resolved relative to the spec file); Events
// inlines the trace directly — the form an embedded kadserve spec uses.
// After loading, Events always holds the resolved trace.
type TraceSpec struct {
	Path   string       `json:"path,omitempty"`
	Events []TraceEvent `json:"events,omitempty"`
}

// TraceEvent is one recorded action. A join with a Node label registers
// the node under that label; a leave with a label removes that specific
// node (an error if it never joined or already left), and a leave
// without a label removes a uniformly random live node.
type TraceEvent struct {
	TMin float64 `json:"t_min"`
	Op   string  `json:"op"` // join | leave
	Node string  `json:"node,omitempty"`
}

// Generators is the resolved generative-workload bundle one run
// executes — the merged spec fields, with any trace fully loaded. The
// zero value runs nothing.
type Generators struct {
	Sessions    *SessionsSpec    `json:"sessions,omitempty"`
	Arrivals    *ArrivalsSpec    `json:"arrivals,omitempty"`
	Popularity  *PopularitySpec  `json:"popularity,omitempty"`
	FlashCrowds []FlashCrowdSpec `json:"flash_crowds,omitempty"`
	Trace       *TraceSpec       `json:"trace,omitempty"`
}

// Enabled reports whether any generator is configured.
func (g Generators) Enabled() bool {
	return g.Sessions != nil || g.Arrivals != nil || g.Popularity != nil ||
		len(g.FlashCrowds) > 0 || g.Trace != nil
}

// Canon renders the bundle canonically for run fingerprints: two runs
// with the same Canon execute the same generative workload. Empty for
// the zero value, so fingerprints of generator-free runs are unchanged
// from before the workload layer existed.
func (g Generators) Canon() string {
	if !g.Enabled() {
		return ""
	}
	// Struct-ordered json.Marshal is deterministic; the trace rides along
	// through Events, so an edited trace file changes the canon too.
	b, err := json.Marshal(g)
	if err != nil {
		// Generators hold only plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("workload: canon: %v", err))
	}
	return string(b)
}

// Validate checks the bundle against the run it is attached to.
// totalMinutes is the run's full length, withTraffic whether the run
// generates lookup/store traffic (Popularity needs it).
func (g Generators) Validate(totalMinutes float64, withTraffic bool) error {
	if g.Sessions != nil {
		if err := g.Sessions.validate(); err != nil {
			return err
		}
		if g.Arrivals == nil && len(g.FlashCrowds) == 0 {
			return fmt.Errorf("workload: sessions need a join source (arrivals or flash_crowds)")
		}
	}
	if g.Arrivals != nil {
		if err := g.Arrivals.validate(); err != nil {
			return err
		}
	}
	if g.Popularity != nil {
		if err := g.Popularity.validate(); err != nil {
			return err
		}
		if !withTraffic {
			return fmt.Errorf("workload: popularity requires traffic")
		}
	}
	for i, fc := range g.FlashCrowds {
		if err := fc.validate(); err != nil {
			return fmt.Errorf("workload: flash_crowds[%d]: %w", i, err)
		}
		if fc.AtMinutes >= totalMinutes {
			return fmt.Errorf("workload: flash_crowds[%d] at %gm is past the run end %gm",
				i, fc.AtMinutes, totalMinutes)
		}
	}
	if g.Trace != nil {
		if len(g.Trace.Events) == 0 {
			return fmt.Errorf("workload: trace has no events (path %q unresolved?)", g.Trace.Path)
		}
		for i, ev := range g.Trace.Events {
			if ev.TMin > totalMinutes {
				return fmt.Errorf("workload: trace event %d at %gm is past the run end %gm",
					i, ev.TMin, totalMinutes)
			}
		}
	}
	return nil
}

func (s *SessionsSpec) validate() error {
	switch s.Dist {
	case "lognormal":
		if s.MeanMinutes <= 0 {
			return fmt.Errorf("workload: lognormal sessions need mean_minutes > 0 (got %g)", s.MeanMinutes)
		}
		if s.Sigma < 0 {
			return fmt.Errorf("workload: lognormal sigma %g is negative", s.Sigma)
		}
		if s.MinMinutes != 0 || s.Alpha != 0 {
			return fmt.Errorf("workload: lognormal sessions take mean_minutes/sigma, not min_minutes/alpha")
		}
	case "pareto":
		if s.MinMinutes <= 0 {
			return fmt.Errorf("workload: pareto sessions need min_minutes > 0 (got %g)", s.MinMinutes)
		}
		if s.Alpha <= 0 {
			return fmt.Errorf("workload: pareto sessions need alpha > 0 (got %g)", s.Alpha)
		}
		if s.MeanMinutes != 0 || s.Sigma != 0 {
			return fmt.Errorf("workload: pareto sessions take min_minutes/alpha, not mean_minutes/sigma")
		}
	default:
		return fmt.Errorf("workload: unknown session dist %q (lognormal, pareto)", s.Dist)
	}
	return nil
}

func (a *ArrivalsSpec) validate() error {
	if a.RatePerMinute <= 0 {
		return fmt.Errorf("workload: arrivals need rate_per_minute > 0 (got %g)", a.RatePerMinute)
	}
	if d := a.Diurnal; d != nil {
		if d.PeriodMinutes <= 0 {
			return fmt.Errorf("workload: diurnal period_minutes %g must be positive", d.PeriodMinutes)
		}
		if d.Amplitude < 0 || d.Amplitude > 1 {
			return fmt.Errorf("workload: diurnal amplitude %g outside [0,1]", d.Amplitude)
		}
	}
	return nil
}

func (p *PopularitySpec) validate() error {
	if p.ZipfS <= 1 {
		return fmt.Errorf("workload: zipf_s %g must be > 1", p.ZipfS)
	}
	if p.ZipfV != 0 && p.ZipfV < 1 {
		return fmt.Errorf("workload: zipf_v %g must be >= 1", p.ZipfV)
	}
	return nil
}

func (fc *FlashCrowdSpec) validate() error {
	if fc.AtMinutes < 0 {
		return fmt.Errorf("at_minutes %g is negative", fc.AtMinutes)
	}
	if fc.Joins < 1 {
		return fmt.Errorf("joins %d must be >= 1", fc.Joins)
	}
	if fc.WindowMinutes < 0 {
		return fmt.Errorf("window_minutes %g is negative", fc.WindowMinutes)
	}
	if fc.Sessions != nil {
		return fc.Sessions.validate()
	}
	return nil
}

// Merge overlays run onto defaults: every field the run sets wins, every
// field it leaves nil falls back to the defaults block.
func Merge(defaults *RunSpec, run RunSpec) RunSpec {
	if defaults == nil {
		return run
	}
	out := *defaults
	out.Name = run.Name
	if run.SeedOffset != nil {
		out.SeedOffset = run.SeedOffset
	}
	if run.Size != nil {
		out.Size = run.Size
	}
	if run.K != nil {
		out.K = run.K
	}
	if run.Alpha != nil {
		out.Alpha = run.Alpha
	}
	if run.Bits != nil {
		out.Bits = run.Bits
	}
	if run.Staleness != nil {
		out.Staleness = run.Staleness
	}
	if run.Loss != nil {
		out.Loss = run.Loss
	}
	if run.Churn != nil {
		out.Churn = run.Churn
	}
	if run.ChurnMinutes != nil {
		out.ChurnMinutes = run.ChurnMinutes
	}
	if run.DrainChurn != nil {
		out.DrainChurn = run.DrainChurn
	}
	if run.Traffic != nil {
		out.Traffic = run.Traffic
	}
	if run.LookupsPerMinute != nil {
		out.LookupsPerMinute = run.LookupsPerMinute
	}
	if run.StoresPerMinute != nil {
		out.StoresPerMinute = run.StoresPerMinute
	}
	if run.KeyPool != nil {
		out.KeyPool = run.KeyPool
	}
	if run.SetupMinutes != nil {
		out.SetupMinutes = run.SetupMinutes
	}
	if run.StabilizeMinutes != nil {
		out.StabilizeMinutes = run.StabilizeMinutes
	}
	if run.SnapshotMinutes != nil {
		out.SnapshotMinutes = run.SnapshotMinutes
	}
	if run.SampleFraction != nil {
		out.SampleFraction = run.SampleFraction
	}
	if run.Attack != nil {
		out.Attack = run.Attack
	}
	if run.Sessions != nil {
		out.Sessions = run.Sessions
	}
	if run.Arrivals != nil {
		out.Arrivals = run.Arrivals
	}
	if run.Popularity != nil {
		out.Popularity = run.Popularity
	}
	if run.FlashCrowds != nil {
		out.FlashCrowds = run.FlashCrowds
	}
	if run.Trace != nil {
		out.Trace = run.Trace
	}
	return out
}

// Decode reads a spec from bytes with strict field checking and
// validates its shape. Traces referenced by path are NOT resolved —
// call ResolveTraces (Load does both).
func Decode(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("workload: spec: %w", err)
	}
	// A second document in the same file is a malformed spec, not data to
	// silently ignore.
	if dec.More() {
		return nil, fmt.Errorf("workload: spec: trailing data after the spec document")
	}
	if err := sp.check(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Check validates the spec's shape for callers that received it through
// a larger decoded document rather than Decode/Load (which both check).
func (sp *Spec) Check() error {
	return sp.check()
}

// check validates the spec's own shape (per-run semantics against scale
// defaults are the resolver's job).
func (sp *Spec) check() error {
	if sp.Version != SpecVersion {
		return fmt.Errorf("workload: spec version %d unsupported (want %d; a missing version field must be added explicitly)",
			sp.Version, SpecVersion)
	}
	if sp.ID == "" {
		return fmt.Errorf("workload: spec needs an id")
	}
	if len(sp.Runs) == 0 {
		return fmt.Errorf("workload: spec %q has no runs", sp.ID)
	}
	seen := make(map[string]bool, len(sp.Runs))
	for i := range sp.Runs {
		merged := Merge(sp.Defaults, sp.Runs[i])
		if merged.Name == "" {
			return fmt.Errorf("workload: spec %q run %d has no name", sp.ID, i)
		}
		if seen[merged.Name] {
			return fmt.Errorf("workload: spec %q has duplicate run name %q", sp.ID, merged.Name)
		}
		seen[merged.Name] = true
		if err := merged.check(); err != nil {
			return fmt.Errorf("workload: spec %q run %q: %w", sp.ID, merged.Name, err)
		}
	}
	return nil
}

// check validates the scale-independent constraints of one merged run.
func (r *RunSpec) check() error {
	for name, v := range map[string]*int{
		"size": r.Size, "k": r.K, "alpha": r.Alpha, "bits": r.Bits,
		"staleness": r.Staleness,
	} {
		if v != nil && *v < 0 {
			return fmt.Errorf("%s %d is negative", name, *v)
		}
	}
	if r.KeyPool != nil && *r.KeyPool < 1 {
		return fmt.Errorf("key_pool %d must be >= 1", *r.KeyPool)
	}
	// Explicit 0 means "off" for the traffic rates; only signs are wrong.
	for name, v := range map[string]*int{
		"lookups_per_minute": r.LookupsPerMinute, "stores_per_minute": r.StoresPerMinute,
	} {
		if v != nil && *v < 0 {
			return fmt.Errorf("%s %d is negative (use 0 to turn the rate off)", name, *v)
		}
	}
	for name, v := range map[string]*float64{
		"churn_minutes": r.ChurnMinutes, "setup_minutes": r.SetupMinutes,
		"stabilize_minutes": r.StabilizeMinutes, "snapshot_minutes": r.SnapshotMinutes,
	} {
		if v != nil && *v < 0 {
			return fmt.Errorf("%s %g is negative", name, *v)
		}
	}
	if r.SampleFraction != nil && (*r.SampleFraction <= 0 || *r.SampleFraction > 1) {
		return fmt.Errorf("sample_fraction %g outside (0,1]", *r.SampleFraction)
	}
	if r.ChurnMinutes != nil && r.DrainChurn != nil && *r.DrainChurn {
		return fmt.Errorf("churn_minutes and drain_churn are mutually exclusive")
	}
	if r.Attack != nil {
		if r.Attack.Strategy == "" {
			return fmt.Errorf("attack needs a strategy")
		}
		if r.Attack.Budget != nil && *r.Attack.Budget < 1 {
			return fmt.Errorf("attack budget %d must be >= 1", *r.Attack.Budget)
		}
		if r.Attack.Kills != nil && *r.Attack.Kills < 1 {
			return fmt.Errorf("attack kills %d must be >= 1", *r.Attack.Kills)
		}
		if r.Attack.IntervalMinutes < 0 {
			return fmt.Errorf("attack interval_minutes %g is negative", r.Attack.IntervalMinutes)
		}
	}
	if r.Trace != nil && r.Trace.Path == "" && len(r.Trace.Events) == 0 {
		return fmt.Errorf("trace needs a path or inline events")
	}
	// Generator parameter shapes (run-length-dependent checks happen at
	// resolution, when the total duration is known).
	g := r.Generators()
	if g.Sessions != nil {
		if err := g.Sessions.validate(); err != nil {
			return err
		}
	}
	if g.Arrivals != nil {
		if err := g.Arrivals.validate(); err != nil {
			return err
		}
	}
	if g.Popularity != nil {
		if err := g.Popularity.validate(); err != nil {
			return err
		}
	}
	for i, fc := range g.FlashCrowds {
		if err := fc.validate(); err != nil {
			return fmt.Errorf("flash_crowds[%d]: %w", i, err)
		}
	}
	if g.Trace != nil {
		for i, ev := range g.Trace.Events {
			if err := ev.check(); err != nil {
				return fmt.Errorf("trace event %d: %w", i, err)
			}
		}
	}
	return nil
}

func (ev TraceEvent) check() error {
	if ev.TMin < 0 {
		return fmt.Errorf("t_min %g is negative", ev.TMin)
	}
	if ev.Op != "join" && ev.Op != "leave" {
		return fmt.Errorf("unknown op %q (join, leave)", ev.Op)
	}
	return nil
}

// Generators collects the run's generative fields into a bundle.
func (r *RunSpec) Generators() Generators {
	return Generators{
		Sessions: r.Sessions, Arrivals: r.Arrivals, Popularity: r.Popularity,
		FlashCrowds: r.FlashCrowds, Trace: r.Trace,
	}
}

// Traces lists every trace block in the spec (defaults and runs), so
// callers that cannot resolve file paths — a server receiving the spec
// over the wire — can reject path-only traces up front.
func (sp *Spec) Traces() []*TraceSpec {
	var out []*TraceSpec
	if sp.Defaults != nil && sp.Defaults.Trace != nil {
		out = append(out, sp.Defaults.Trace)
	}
	for i := range sp.Runs {
		if sp.Runs[i].Trace != nil {
			out = append(out, sp.Runs[i].Trace)
		}
	}
	return out
}

// ResolveTraces loads every path-referenced trace, resolving relative
// paths against baseDir. Inline events pass through untouched; it is a
// no-op when no run replays a trace.
func (sp *Spec) ResolveTraces(baseDir string) error {
	resolve := func(t *TraceSpec) error {
		if t == nil || t.Path == "" || len(t.Events) > 0 {
			return nil
		}
		path := t.Path
		if !filepath.IsAbs(path) {
			path = filepath.Join(baseDir, path)
		}
		events, err := LoadTrace(path)
		if err != nil {
			return err
		}
		t.Events = events
		return nil
	}
	if sp.Defaults != nil {
		if err := resolve(sp.Defaults.Trace); err != nil {
			return err
		}
	}
	for i := range sp.Runs {
		if err := resolve(sp.Runs[i].Trace); err != nil {
			return err
		}
	}
	return nil
}

// Load reads, strictly decodes and validates a spec file, resolving
// trace paths relative to the file's directory.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: spec %s: %w", path, err)
	}
	sp, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("workload: spec %s: %w", path, err)
	}
	if err := sp.ResolveTraces(filepath.Dir(path)); err != nil {
		return nil, fmt.Errorf("workload: spec %s: %w", path, err)
	}
	return sp, nil
}

// LoadTrace reads a JSONL trace: one strictly-decoded TraceEvent per
// non-empty line. Label lifecycles are validated in time order — a
// labeled leave must name a node that joined before it and is still
// live, and a labeled join must not reuse a live label — so a broken
// trace fails at load time, not halfway through a simulation.
func LoadTrace(path string) ([]TraceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	defer f.Close()
	var events []TraceEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("workload: trace %s line %d: %w", path, line, err)
		}
		if err := ev.check(); err != nil {
			return nil, fmt.Errorf("workload: trace %s line %d: %w", path, line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("workload: trace %s has no events", path)
	}
	if err := checkTraceLabels(events); err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	return events, nil
}

// checkTraceLabels replays label lifecycles in time order (ties resolve
// in file order, matching the replayer's scheduling).
func checkTraceLabels(events []TraceEvent) error {
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	// Stable insertion sort by time keeps file order on ties without
	// importing sort for a SliceStable over a tiny index slice.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && events[order[j]].TMin < events[order[j-1]].TMin; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	live := make(map[string]bool)
	for _, i := range order {
		ev := events[i]
		if ev.Node == "" {
			continue
		}
		switch ev.Op {
		case "join":
			if live[ev.Node] {
				return fmt.Errorf("node %q joins at %gm while already live", ev.Node, ev.TMin)
			}
			live[ev.Node] = true
		case "leave":
			if !live[ev.Node] {
				return fmt.Errorf("node %q leaves at %gm without a prior join", ev.Node, ev.TMin)
			}
			delete(live, ev.Node)
		}
	}
	return nil
}

// Digest fingerprints the spec: a short hex digest over its canonical
// JSON form with all traces resolved, so editing any field — or any
// replayed trace file — yields a different digest. Checkpoint resume
// uses it to refuse mixing results across edited specs.
func (sp *Spec) Digest() string {
	b, err := json.Marshal(sp)
	if err != nil {
		panic(fmt.Sprintf("workload: digest: %v", err))
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%x", sum[:8])
}
