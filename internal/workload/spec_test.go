package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validSpecJSON is a minimal well-formed spec the rejection tests mutate.
const validSpecJSON = `{
  "version": 1,
  "id": "t",
  "runs": [{"name": "r0", "k": 5}]
}`

func TestDecodeValidSpec(t *testing.T) {
	sp, err := Decode([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sp.ID != "t" || len(sp.Runs) != 1 || sp.Runs[0].Name != "r0" || *sp.Runs[0].K != 5 {
		t.Fatalf("decoded %+v", sp)
	}
}

func TestDecodeRejections(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"unknown top-level field", `{"version":1,"id":"t","bogus":1,"runs":[{"name":"r"}]}`, "bogus"},
		{"unknown run field", `{"version":1,"id":"t","runs":[{"name":"r","kk":5}]}`, "kk"},
		{"unknown nested field", `{"version":1,"id":"t","runs":[{"name":"r","arrivals":{"rate_per_minute":1,"burst":2}}]}`, "burst"},
		{"missing version", `{"id":"t","runs":[{"name":"r"}]}`, "version"},
		{"future version", `{"version":2,"id":"t","runs":[{"name":"r"}]}`, "version 2"},
		{"missing id", `{"version":1,"runs":[{"name":"r"}]}`, "id"},
		{"no runs", `{"version":1,"id":"t"}`, "no runs"},
		{"unnamed run", `{"version":1,"id":"t","runs":[{"k":5}]}`, "no name"},
		{"duplicate run names", `{"version":1,"id":"t","runs":[{"name":"r"},{"name":"r"}]}`, "duplicate"},
		{"trailing document", validSpecJSON + `{"version":1}`, "trailing"},
		{"negative k", `{"version":1,"id":"t","runs":[{"name":"r","k":-1}]}`, "negative"},
		{"negative lookups", `{"version":1,"id":"t","runs":[{"name":"r","lookups_per_minute":-1}]}`, "lookups_per_minute"},
		{"zero key pool", `{"version":1,"id":"t","runs":[{"name":"r","key_pool":0}]}`, "key_pool"},
		{"sample fraction over 1", `{"version":1,"id":"t","runs":[{"name":"r","sample_fraction":1.5}]}`, "sample_fraction"},
		{"churn_minutes vs drain", `{"version":1,"id":"t","runs":[{"name":"r","churn_minutes":5,"drain_churn":true}]}`, "mutually exclusive"},
		{"attack without strategy", `{"version":1,"id":"t","runs":[{"name":"r","attack":{"budget":3}}]}`, "strategy"},
		{"attack zero budget", `{"version":1,"id":"t","runs":[{"name":"r","attack":{"strategy":"random","budget":0}}]}`, "budget"},
		{"unknown session dist", `{"version":1,"id":"t","runs":[{"name":"r","sessions":{"dist":"uniform","mean_minutes":5},"arrivals":{"rate_per_minute":1}}]}`, "dist"},
		{"lognormal without mean", `{"version":1,"id":"t","runs":[{"name":"r","sessions":{"dist":"lognormal"},"arrivals":{"rate_per_minute":1}}]}`, "mean_minutes"},
		{"lognormal with pareto knobs", `{"version":1,"id":"t","runs":[{"name":"r","sessions":{"dist":"lognormal","mean_minutes":5,"alpha":2},"arrivals":{"rate_per_minute":1}}]}`, "not min_minutes/alpha"},
		{"pareto without alpha", `{"version":1,"id":"t","runs":[{"name":"r","sessions":{"dist":"pareto","min_minutes":2},"arrivals":{"rate_per_minute":1}}]}`, "alpha"},
		{"zero arrival rate", `{"version":1,"id":"t","runs":[{"name":"r","arrivals":{"rate_per_minute":0}}]}`, "rate_per_minute"},
		{"diurnal amplitude over 1", `{"version":1,"id":"t","runs":[{"name":"r","arrivals":{"rate_per_minute":1,"diurnal":{"period_minutes":60,"amplitude":1.5}}}]}`, "amplitude"},
		{"diurnal zero period", `{"version":1,"id":"t","runs":[{"name":"r","arrivals":{"rate_per_minute":1,"diurnal":{"period_minutes":0,"amplitude":0.5}}}]}`, "period"},
		{"zipf_s at 1", `{"version":1,"id":"t","runs":[{"name":"r","popularity":{"zipf_s":1}}]}`, "zipf_s"},
		{"zipf_v below 1", `{"version":1,"id":"t","runs":[{"name":"r","popularity":{"zipf_s":1.2,"zipf_v":0.5}}]}`, "zipf_v"},
		{"flash crowd without joins", `{"version":1,"id":"t","runs":[{"name":"r","flash_crowds":[{"at_minutes":5}]}]}`, "joins"},
		{"flash crowd negative time", `{"version":1,"id":"t","runs":[{"name":"r","flash_crowds":[{"at_minutes":-1,"joins":3}]}]}`, "at_minutes"},
		{"empty trace block", `{"version":1,"id":"t","runs":[{"name":"r","trace":{}}]}`, "trace"},
		{"trace event bad op", `{"version":1,"id":"t","runs":[{"name":"r","trace":{"events":[{"t_min":1,"op":"crash"}]}}]}`, "op"},
		{"trace event negative time", `{"version":1,"id":"t","runs":[{"name":"r","trace":{"events":[{"t_min":-1,"op":"join"}]}}]}`, "t_min"},
		{"not json", `version: 1`, "spec"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Decode([]byte(tt.in))
			if err == nil {
				t.Fatalf("Decode accepted %s", tt.in)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestDefaultsMergeAndRunOverride pins Merge: a run field wins, an unset
// one falls back to the defaults block, and validation runs on the
// merged view (an invalid default surfaces even when declared globally).
func TestDefaultsMergeAndRunOverride(t *testing.T) {
	sp, err := Decode([]byte(`{
	  "version": 1, "id": "t",
	  "defaults": {"k": 10, "staleness": 1, "churn": "1/1"},
	  "runs": [
	    {"name": "a"},
	    {"name": "b", "k": 20, "churn": "2/2"}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	a := Merge(sp.Defaults, sp.Runs[0])
	b := Merge(sp.Defaults, sp.Runs[1])
	if *a.K != 10 || *a.Churn != "1/1" || *a.Staleness != 1 {
		t.Fatalf("defaults did not fill run a: %+v", a)
	}
	if *b.K != 20 || *b.Churn != "2/2" || *b.Staleness != 1 {
		t.Fatalf("run b overrides wrong: k=%d churn=%s", *b.K, *b.Churn)
	}

	// An out-of-range default is caught through every run it reaches.
	if _, err := Decode([]byte(`{
	  "version": 1, "id": "t",
	  "defaults": {"sample_fraction": 2},
	  "runs": [{"name": "a"}]
	}`)); err == nil || !strings.Contains(err.Error(), "sample_fraction") {
		t.Fatalf("invalid default survived merge: %v", err)
	}
}

func TestGeneratorsValidateAgainstRun(t *testing.T) {
	arr := Generators{Arrivals: &ArrivalsSpec{RatePerMinute: 1}}
	if err := arr.Validate(30, false); err != nil {
		t.Fatalf("plain arrivals: %v", err)
	}
	// Sessions without any join source have nothing to apply to.
	s := Generators{Sessions: &SessionsSpec{Dist: "lognormal", MeanMinutes: 5}}
	if err := s.Validate(30, false); err == nil || !strings.Contains(err.Error(), "join source") {
		t.Fatalf("orphan sessions: %v", err)
	}
	// Popularity skews the traffic key picker; without traffic it is dead.
	p := Generators{Popularity: &PopularitySpec{ZipfS: 1.2}}
	if err := p.Validate(30, true); err != nil {
		t.Fatalf("popularity with traffic: %v", err)
	}
	if err := p.Validate(30, false); err == nil || !strings.Contains(err.Error(), "traffic") {
		t.Fatalf("popularity without traffic: %v", err)
	}
	// Events past the run end would silently never fire.
	fc := Generators{FlashCrowds: []FlashCrowdSpec{{AtMinutes: 40, Joins: 5}}}
	if err := fc.Validate(30, false); err == nil || !strings.Contains(err.Error(), "past the run end") {
		t.Fatalf("late flash crowd: %v", err)
	}
	tr := Generators{Trace: &TraceSpec{Events: []TraceEvent{{TMin: 99, Op: "join"}}}}
	if err := tr.Validate(30, false); err == nil || !strings.Contains(err.Error(), "past the run end") {
		t.Fatalf("late trace event: %v", err)
	}
}

func TestCanonEmptyForZeroBundle(t *testing.T) {
	if c := (Generators{}).Canon(); c != "" {
		t.Fatalf("zero bundle canon = %q, want empty (fingerprint compatibility)", c)
	}
	g := Generators{Arrivals: &ArrivalsSpec{RatePerMinute: 2}}
	if g.Canon() == "" || g.Canon() != g.Canon() {
		t.Fatal("non-empty bundle canon must be stable and non-empty")
	}
}

func TestDigestTracksEveryField(t *testing.T) {
	mk := func(body string) string {
		sp, err := Decode([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		return sp.Digest()
	}
	base := mk(validSpecJSON)
	if base != mk(validSpecJSON) {
		t.Fatal("digest not deterministic")
	}
	edited := mk(`{"version":1,"id":"t","runs":[{"name":"r0","k":6}]}`)
	if edited == base {
		t.Fatal("editing a run field left the digest unchanged")
	}
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadResolvesTraceRelativeToSpec(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "trace.jsonl", `
{"t_min": 1, "op": "join", "node": "a"}
{"t_min": 2, "op": "join"}
{"t_min": 5, "op": "leave", "node": "a"}
{"t_min": 6, "op": "leave"}
`)
	spec := writeFile(t, dir, "spec.json", `{
	  "version": 1, "id": "traced",
	  "runs": [{"name": "r", "churn_minutes": 10, "trace": {"path": "trace.jsonl"}}]
	}`)
	sp, err := Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	evs := sp.Runs[0].Trace.Events
	if len(evs) != 4 || evs[0].Node != "a" || evs[3].Op != "leave" {
		t.Fatalf("resolved events %+v", evs)
	}
	// The digest covers the resolved trace: editing the trace file alone
	// must change it.
	d1 := sp.Digest()
	writeFile(t, dir, "trace.jsonl", `{"t_min": 1, "op": "join", "node": "a"}
{"t_min": 5, "op": "leave", "node": "a"}
`)
	sp2, err := Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Digest() == d1 {
		t.Fatal("editing the trace file left the spec digest unchanged")
	}
}

func TestLoadTraceErrors(t *testing.T) {
	dir := t.TempDir()
	tests := []struct {
		name    string
		content string
		want    string
	}{
		{"bad json line", "{\"t_min\": 1, \"op\": \"join\"}\nnot json\n", "line 2"},
		{"unknown field", `{"t_min": 1, "op": "join", "why": "x"}`, "why"},
		{"bad op", `{"t_min": 1, "op": "crash"}`, "op"},
		{"negative time", `{"t_min": -2, "op": "join"}`, "t_min"},
		{"empty file", "\n\n", "no events"},
		{"leave before join", `{"t_min": 1, "op": "leave", "node": "a"}`, "without a prior join"},
		{"double join", "{\"t_min\": 1, \"op\": \"join\", \"node\": \"a\"}\n{\"t_min\": 2, \"op\": \"join\", \"node\": \"a\"}\n", "already live"},
		{"out-of-order leave", "{\"t_min\": 9, \"op\": \"join\", \"node\": \"a\"}\n{\"t_min\": 3, \"op\": \"leave\", \"node\": \"a\"}\n", "without a prior join"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := writeFile(t, dir, "t.jsonl", tt.content)
			_, err := LoadTrace(path)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("LoadTrace = %v, want %q", err, tt.want)
			}
		})
	}
	if _, err := LoadTrace(filepath.Join(dir, "absent.jsonl")); err == nil {
		t.Fatal("missing trace file must error")
	}
	// A spec referencing a missing trace fails at load, not at run time.
	spec := writeFile(t, dir, "spec.json", `{
	  "version": 1, "id": "t",
	  "runs": [{"name": "r", "trace": {"path": "absent.jsonl"}}]
	}`)
	if _, err := Load(spec); err == nil || !strings.Contains(err.Error(), "absent.jsonl") {
		t.Fatalf("spec with missing trace: %v", err)
	}
}
