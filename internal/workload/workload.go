package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"kadre/internal/eventsim"
)

// Population is the engine's view of the network: generative joins and
// trace-driven departures. The scenario package implements it over its
// evolving node set.
type Population interface {
	// Join creates a fresh node and joins it through a random live
	// bootstrap node, returning a handle for ending the session later.
	Join() (Session, error)
	// LeaveRandom removes one uniformly chosen live node; false when no
	// node is left.
	LeaveRandom() bool
}

// Session is one generatively joined node's lifetime handle. End makes
// the node leave silently (a churn-style ungraceful departure); it
// reports false when the node is already gone — removed meanwhile by
// churn or an adversary — which is not an error.
type Session interface {
	End() bool
}

// Random-stream tags: each generator draws from its own splitmix64
// stream derived from (run seed, tag), so adding one generator to a spec
// never perturbs another's draws, and nothing here competes with the
// kernel RNG that churn/traffic/setup consume.
const (
	streamArrivals = 0xA11A1A1A00000001
	streamSessions = 0xA11A1A1A00000002
	streamFlash    = 0xA11A1A1A00000003
	streamZipf     = 0xA11A1A1A00000004
)

// DeriveStream derives an independent RNG seed for one generator stream
// from the run seed, using the same splitmix64 mixer the sweep layer
// uses for replication seeds. Never returns 0.
func DeriveStream(seed int64, stream uint64) int64 {
	x := uint64(seed) + stream*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return int64(x)
}

func streamRand(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveStream(seed, stream)))
}

// NewZipfPicker returns a key-pool index picker drawing ranks
// Zipf(s, v) over [0, poolSize), for plugging into the traffic
// generator's key selection. Deterministic in (seed, spec, poolSize).
func NewZipfPicker(seed int64, p *PopularitySpec, poolSize int) (func() int, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if poolSize < 1 {
		return nil, fmt.Errorf("workload: zipf over empty key pool")
	}
	v := p.ZipfV
	if v == 0 {
		v = 1
	}
	z := rand.NewZipf(streamRand(seed, streamZipf), p.ZipfS, v, uint64(poolSize-1))
	if z == nil {
		return nil, fmt.Errorf("workload: invalid zipf parameters s=%g v=%g", p.ZipfS, v)
	}
	return func() int { return int(z.Uint64()) }, nil
}

// Engine executes a Generators bundle against a population inside the
// event kernel. All scheduling happens on the single simulator
// goroutine, and every random draw comes from a stream derived from the
// run seed, so a run's byte-determinism contract is preserved for any
// sweep worker count. (The Popularity generator is not run here — it is
// a key picker the traffic generator consumes; see NewZipfPicker.)
type Engine struct {
	sim *eventsim.Simulator
	gen Generators
	pop Population

	arrivals *rand.Rand
	sessions *rand.Rand
	flash    *rand.Rand

	until   time.Duration
	timer   *eventsim.Timer
	labeled map[string]Session

	joins  int
	leaves int
	errs   []error
}

// NewEngine builds an engine over an already-validated bundle. Nothing
// happens until Start.
func NewEngine(sim *eventsim.Simulator, gen Generators, seed int64, pop Population) *Engine {
	return &Engine{
		sim: sim, gen: gen, pop: pop,
		arrivals: streamRand(seed, streamArrivals),
		sessions: streamRand(seed, streamSessions),
		flash:    streamRand(seed, streamFlash),
		labeled:  make(map[string]Session),
	}
}

// Joins reports how many generative joins the engine has performed.
func (e *Engine) Joins() int { return e.joins }

// Leaves reports how many generative departures (session ends, trace
// leaves) the engine has performed.
func (e *Engine) Leaves() int { return e.leaves }

// Errs returns errors from joins (at most 16 retained; like churn
// additions, a failed join never aborts the run).
func (e *Engine) Errs() []error { return e.errs }

// Start schedules the bundle: the Poisson arrival process ticks per
// minute through [arrivalsFrom, until) — the churn window, where the
// paper's membership dynamics live — while flash crowds and trace events
// fire at their own absolute times. Call at virtual time zero, before
// the kernel runs.
func (e *Engine) Start(arrivalsFrom, until time.Duration) error {
	if until < arrivalsFrom {
		return fmt.Errorf("workload: window ends %v before it starts %v", until, arrivalsFrom)
	}
	e.until = until
	if e.gen.Arrivals != nil {
		var err error
		e.timer, err = e.sim.ScheduleAt(arrivalsFrom, e.minute)
		if err != nil {
			return fmt.Errorf("workload: arrivals: %w", err)
		}
	}
	for i := range e.gen.FlashCrowds {
		if err := e.scheduleCrowd(&e.gen.FlashCrowds[i]); err != nil {
			return err
		}
	}
	if e.gen.Trace != nil {
		for _, ev := range e.gen.Trace.Events {
			ev := ev
			at := Minutes(ev.TMin)
			if _, err := e.sim.ScheduleAt(at, func() { e.replay(ev) }); err != nil {
				return fmt.Errorf("workload: trace event at %gm: %w", ev.TMin, err)
			}
		}
	}
	return nil
}

// Stop cancels pending arrival ticks. Flash-crowd joins, trace events
// and session ends already scheduled still run.
func (e *Engine) Stop() {
	if e.timer != nil {
		e.timer.Cancel()
		e.timer = nil
	}
}

// minute draws this minute's Poisson arrival count and re-arms.
func (e *Engine) minute() {
	now := e.sim.Now()
	if now >= e.until {
		return
	}
	rate := e.gen.Arrivals.rateAt(now)
	for i := poisson(e.arrivals, rate); i > 0; i-- {
		offset := time.Duration(e.arrivals.Int63n(int64(time.Minute)))
		e.sim.MustSchedule(offset, func() { e.join(e.gen.Sessions) })
	}
	if now+time.Minute < e.until {
		e.timer = e.sim.MustSchedule(time.Minute, e.minute)
	}
}

// scheduleCrowd spreads one flash crowd's joins uniformly over its
// window. The crowd's own session distribution, when set, overrides the
// run's.
func (e *Engine) scheduleCrowd(fc *FlashCrowdSpec) error {
	window := fc.WindowMinutes
	if window == 0 {
		window = 1
	}
	sessions := fc.Sessions
	if sessions == nil {
		sessions = e.gen.Sessions
	}
	for i := 0; i < fc.Joins; i++ {
		at := Minutes(fc.AtMinutes + e.flash.Float64()*window)
		if _, err := e.sim.ScheduleAt(at, func() { e.join(sessions) }); err != nil {
			return fmt.Errorf("workload: flash crowd at %gm: %w", fc.AtMinutes, err)
		}
	}
	return nil
}

// join performs one generative join, scheduling the session's departure
// when a lifetime distribution applies.
func (e *Engine) join(sessions *SessionsSpec) {
	sess, err := e.pop.Join()
	if err != nil {
		if len(e.errs) < 16 {
			e.errs = append(e.errs, err)
		}
		return
	}
	e.joins++
	if sessions != nil {
		life := Minutes(sessions.sample(e.sessions))
		e.sim.MustSchedule(life, func() {
			if sess.End() {
				e.leaves++
			}
		})
	}
}

// replay executes one trace event. Trace-joined nodes live exactly as
// long as the trace says — the run's session distribution never applies
// to them. A labeled leave ends that node if it is still around (churn
// or an adversary may have removed it first); an unlabeled leave removes
// a uniformly random live node.
func (e *Engine) replay(ev TraceEvent) {
	switch ev.Op {
	case "join":
		sess, err := e.pop.Join()
		if err != nil {
			if len(e.errs) < 16 {
				e.errs = append(e.errs, err)
			}
			return
		}
		e.joins++
		if ev.Node != "" {
			e.labeled[ev.Node] = sess
		}
	case "leave":
		if ev.Node != "" {
			sess := e.labeled[ev.Node]
			delete(e.labeled, ev.Node)
			if sess != nil && sess.End() {
				e.leaves++
			}
			return
		}
		if e.pop.LeaveRandom() {
			e.leaves++
		}
	}
}

// rateAt evaluates the (possibly diurnal) arrival rate at virtual time
// t, in joins per minute, clamped at zero.
func (a *ArrivalsSpec) rateAt(t time.Duration) float64 {
	rate := a.RatePerMinute
	if d := a.Diurnal; d != nil {
		phase := 2 * math.Pi * (t.Minutes() - d.PhaseMinutes) / d.PeriodMinutes
		rate *= 1 + d.Amplitude*math.Sin(phase)
	}
	return math.Max(0, rate)
}

// sample draws one session length in minutes from a validated spec.
func (s *SessionsSpec) sample(r *rand.Rand) float64 {
	switch s.Dist {
	case "lognormal":
		// Parameterized by the distribution mean: E[X] = exp(mu+sigma^2/2),
		// so mu = ln(mean) - sigma^2/2 makes MeanMinutes the true mean.
		sigma := s.Sigma
		if sigma == 0 {
			sigma = 1
		}
		mu := math.Log(s.MeanMinutes) - sigma*sigma/2
		return math.Exp(mu + sigma*r.NormFloat64())
	case "pareto":
		// Inverse-CDF: x_m * (1-U)^(-1/alpha).
		return s.MinMinutes * math.Pow(1-r.Float64(), -1/s.Alpha)
	}
	panic(fmt.Sprintf("workload: unvalidated session dist %q", s.Dist))
}

// poisson draws Poisson(lambda) by Knuth's product method. Large rates
// are split into <=30 chunks first (Poisson is additive), keeping
// exp(-lambda) well away from underflow.
func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	n := 0
	for lambda > 30 {
		n += poissonKnuth(r, 30)
		lambda -= 30
	}
	return n + poissonKnuth(r, lambda)
}

func poissonKnuth(r *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Minutes converts fractional simulated minutes to kernel time.
func Minutes(m float64) time.Duration {
	return time.Duration(m * float64(time.Minute))
}
