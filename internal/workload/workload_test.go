package workload

import (
	"fmt"
	"testing"
	"time"

	"kadre/internal/eventsim"
)

// fakePop records every membership operation with its virtual timestamp,
// giving the determinism tests a full event log to compare.
type fakePop struct {
	sim  *eventsim.Simulator
	log  []string
	next int
	live map[int]bool
}

type fakeSession struct {
	p  *fakePop
	id int
}

func newFakePop(sim *eventsim.Simulator) *fakePop {
	return &fakePop{sim: sim, live: make(map[int]bool)}
}

func (p *fakePop) Join() (Session, error) {
	id := p.next
	p.next++
	p.live[id] = true
	p.log = append(p.log, fmt.Sprintf("%d join %d", p.sim.Now(), id))
	return &fakeSession{p: p, id: id}, nil
}

func (p *fakePop) LeaveRandom() bool {
	for id := 0; id < p.next; id++ {
		if p.live[id] {
			delete(p.live, id)
			p.log = append(p.log, fmt.Sprintf("%d leave %d", p.sim.Now(), id))
			return true
		}
	}
	return false
}

func (s *fakeSession) End() bool {
	if !s.p.live[s.id] {
		return false
	}
	delete(s.p.live, s.id)
	s.p.log = append(s.p.log, fmt.Sprintf("%d end %d", s.p.sim.Now(), s.id))
	return true
}

// runBundle executes one Generators bundle to completion and returns the
// population's full event log plus the join/leave counters.
func runBundle(t *testing.T, gen Generators, seed int64, minutes float64) ([]string, int, int) {
	t.Helper()
	sim := eventsim.New(seed)
	pop := newFakePop(sim)
	eng := NewEngine(sim, gen, seed, pop)
	if err := eng.Start(0, Minutes(minutes)); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(Minutes(minutes))
	if errs := eng.Errs(); len(errs) != 0 {
		t.Fatalf("engine errors: %v", errs)
	}
	return pop.log, eng.Joins(), eng.Leaves()
}

func fullBundle() Generators {
	return Generators{
		Sessions: &SessionsSpec{Dist: "lognormal", MeanMinutes: 8, Sigma: 1.2},
		Arrivals: &ArrivalsSpec{
			RatePerMinute: 2,
			Diurnal:       &DiurnalSpec{PeriodMinutes: 20, Amplitude: 0.7},
		},
		FlashCrowds: []FlashCrowdSpec{
			{AtMinutes: 10, Joins: 6, WindowMinutes: 2,
				Sessions: &SessionsSpec{Dist: "pareto", MinMinutes: 1, Alpha: 1.5}},
		},
		Trace: &TraceSpec{Events: []TraceEvent{
			{TMin: 3, Op: "join", Node: "a"},
			{TMin: 4, Op: "join"},
			{TMin: 12, Op: "leave", Node: "a"},
			{TMin: 15, Op: "leave"},
		}},
	}
}

// TestEngineOutputDependsOnlyOnSpecAndSeed is the (spec, seed) property
// test: the full membership event log is a pure function of the bundle
// and the seed — identical across repeated runs, different under a
// different seed, and a seed change in one generator's stream never
// silently collapses to the same trajectory.
func TestEngineOutputDependsOnlyOnSpecAndSeed(t *testing.T) {
	gen := fullBundle()
	if err := gen.Validate(40, false); err != nil {
		t.Fatal(err)
	}
	log1, j1, l1 := runBundle(t, gen, 42, 40)
	log2, j2, l2 := runBundle(t, gen, 42, 40)
	if j1 != j2 || l1 != l2 || len(log1) != len(log2) {
		t.Fatalf("same (spec, seed) diverged: %d/%d vs %d/%d", j1, l1, j2, l2)
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("event %d differs: %q vs %q", i, log1[i], log2[i])
		}
	}
	if j1 == 0 || l1 == 0 {
		t.Fatalf("bundle produced no activity (joins=%d leaves=%d)", j1, l1)
	}
	log3, _, _ := runBundle(t, gen, 43, 40)
	same := len(log3) == len(log1)
	if same {
		for i := range log1 {
			if log1[i] != log3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical event log")
	}
}

// TestGeneratorStreamsAreIndependent pins the stream-derivation contract:
// adding one generator to a bundle must not perturb another generator's
// draws. The trace generator is deterministic (no RNG), so adding it must
// leave every arrival and session draw — and thus the whole generative
// part of the log — untouched.
func TestGeneratorStreamsAreIndependent(t *testing.T) {
	base := Generators{
		Sessions: &SessionsSpec{Dist: "lognormal", MeanMinutes: 5},
		Arrivals: &ArrivalsSpec{RatePerMinute: 3},
	}
	withTrace := base
	withTrace.Trace = &TraceSpec{Events: []TraceEvent{{TMin: 35, Op: "join", Node: "late"}}}

	logBase, _, _ := runBundle(t, base, 7, 40)
	logTrace, _, _ := runBundle(t, withTrace, 7, 40)
	// The fake population numbers nodes in join order, so the injected
	// trace join renumbers everything after it — compare times and ops
	// only, with the one trace event removed.
	timeOp := func(log []string, dropOne string) []string {
		out := make([]string, 0, len(log))
		dropped := false
		for _, e := range log {
			var ts int64
			var op string
			var id int
			fmt.Sscanf(e, "%d %s %d", &ts, &op, &id)
			to := fmt.Sprintf("%d %s", ts, op)
			if !dropped && to == dropOne {
				dropped = true
				continue
			}
			out = append(out, to)
		}
		return out
	}
	got := timeOp(logTrace, fmt.Sprintf("%d join", Minutes(35)))
	want := timeOp(logBase, "")
	if len(got) != len(want) {
		t.Fatalf("trace join should add exactly one event: %d vs %d+1", len(logTrace), len(logBase))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("adding a trace event perturbed generative event %d: %q vs %q", i, want[i], got[i])
		}
	}
}

func TestDeriveStreamProperties(t *testing.T) {
	seen := make(map[int64]string)
	for _, seed := range []int64{0, 1, 42, -5, 1 << 40} {
		for _, stream := range []uint64{streamArrivals, streamSessions, streamFlash, streamZipf} {
			v := DeriveStream(seed, stream)
			if v == 0 {
				t.Fatalf("DeriveStream(%d, %#x) = 0", seed, stream)
			}
			key := fmt.Sprintf("%d/%#x", seed, stream)
			if prev, dup := seen[v]; dup {
				t.Fatalf("stream collision: %s and %s both derive %d", prev, key, v)
			}
			seen[v] = key
			if DeriveStream(seed, stream) != v {
				t.Fatal("DeriveStream not deterministic")
			}
		}
	}
}

func TestZipfPickerSkewAndDeterminism(t *testing.T) {
	p := &PopularitySpec{ZipfS: 1.3}
	pick, err := NewZipfPicker(11, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	pick2, err := NewZipfPicker(11, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 64)
	for i := 0; i < 4096; i++ {
		a, b := pick(), pick2()
		if a != b {
			t.Fatalf("draw %d: same (seed, spec) disagreed: %d vs %d", i, a, b)
		}
		if a < 0 || a >= 64 {
			t.Fatalf("draw out of pool range: %d", a)
		}
		counts[a]++
	}
	if counts[0] <= counts[32] {
		t.Fatalf("no head skew: rank0=%d rank32=%d", counts[0], counts[32])
	}
	if _, err := NewZipfPicker(11, p, 0); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestPoissonChunkedMatchesMean(t *testing.T) {
	r := streamRand(1, streamArrivals)
	const lambda, draws = 120.0, 2000 // forces the >30 chunked path
	sum := 0
	for i := 0; i < draws; i++ {
		sum += poisson(r, lambda)
	}
	mean := float64(sum) / draws
	if mean < lambda*0.95 || mean > lambda*1.05 {
		t.Fatalf("poisson(%g) empirical mean %g", lambda, mean)
	}
	if poisson(r, 0) != 0 || poisson(r, -3) != 0 {
		t.Fatal("nonpositive rate must draw zero")
	}
}

func TestDiurnalRateClampsAtZero(t *testing.T) {
	a := &ArrivalsSpec{
		RatePerMinute: 2,
		Diurnal:       &DiurnalSpec{PeriodMinutes: 60, Amplitude: 1},
	}
	// At 3/4 period the sine is -1, so rate*(1-1) == 0.
	if got := a.rateAt(45 * time.Minute); got != 0 {
		t.Fatalf("trough rate = %g, want 0", got)
	}
	if got := a.rateAt(15 * time.Minute); got < 3.99 || got > 4.01 {
		t.Fatalf("peak rate = %g, want ~4", got)
	}
	plain := &ArrivalsSpec{RatePerMinute: 1.5}
	if got := plain.rateAt(10 * time.Minute); got != 1.5 {
		t.Fatalf("non-diurnal rate = %g", got)
	}
}
