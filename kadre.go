// Package kadre ("KADemlia REsilience") reproduces Heck, Kieselmann and
// Wacker, "Evaluating Connection Resilience for the Overlay Network
// Kademlia" (ICDCS 2017): a deterministic event-driven Kademlia simulator,
// a vertex-connectivity analysis pipeline built on Even's vertex-splitting
// transformation and max-flow solvers, and runnable presets for every
// figure and table in the paper's evaluation.
//
// The package is a facade over the internal subsystems. Typical use:
//
//	cfg := kadre.ScenarioConfig{
//		Name: "demo", Seed: 1, Size: 100, K: 20,
//		Traffic: true, Churn: kadre.ChurnRate{Add: 1, Remove: 1},
//		ChurnPhase: 60 * time.Minute,
//	}
//	res, err := kadre.RunScenario(cfg)
//	// res.Points: per-snapshot network size, min and avg connectivity.
//
// Lower-level entry points expose the simulator, the Kademlia node, graph
// snapshots, and the connectivity analyzer directly, so the building
// blocks can be recombined (e.g. analyzing externally captured
// connectivity graphs, or embedding Kademlia nodes in a custom
// simulation).
package kadre

import (
	"time"

	"kadre/internal/attack"
	"kadre/internal/churn"
	"kadre/internal/connectivity"
	"kadre/internal/eventsim"
	"kadre/internal/graph"
	"kadre/internal/id"
	"kadre/internal/kademlia"
	"kadre/internal/maxflow"
	"kadre/internal/scenario"
	"kadre/internal/simnet"
	"kadre/internal/snapshot"
	"kadre/internal/stats"
	"kadre/internal/traffic"
)

// Identifier space.
type (
	// ID is a b-bit Kademlia identifier under the XOR metric.
	ID = id.ID
)

// NewID builds an identifier from big-endian bytes.
func NewID(bits int, data []byte) (ID, error) { return id.New(bits, data) }

// HashID derives an identifier from arbitrary bytes (SHA-256 truncated).
func HashID(bits int, payload []byte) ID { return id.Hash(bits, payload) }

// ParseID decodes the hex form of an identifier.
func ParseID(bits int, s string) (ID, error) { return id.Parse(bits, s) }

// Simulation kernel and network substrate.
type (
	// Simulator is the deterministic discrete-event kernel.
	Simulator = eventsim.Simulator
	// Network is the simulated message-passing network.
	Network = simnet.Network
	// NetworkConfig sets latency and loss models.
	NetworkConfig = simnet.Config
	// Addr is a simulated network address.
	Addr = simnet.Addr
	// LossLevel names a Table 1 message-loss scenario.
	LossLevel = simnet.LossLevel
)

// Table 1 loss levels.
const (
	LossNone   = simnet.LossNone
	LossLow    = simnet.LossLow
	LossMedium = simnet.LossMedium
	LossHigh   = simnet.LossHigh
)

// NewSimulator returns a simulator seeded for reproducibility.
func NewSimulator(seed int64) *Simulator { return eventsim.New(seed) }

// NewNetwork builds a simulated network on a simulator.
func NewNetwork(sim *Simulator, cfg NetworkConfig) *Network { return simnet.New(sim, cfg) }

// Kademlia protocol.
type (
	// Node is one Kademlia participant.
	Node = kademlia.Node
	// NodeConfig carries the protocol parameters b, k, alpha, s.
	NodeConfig = kademlia.Config
	// Contact is a routing-table entry (identifier plus address).
	Contact = kademlia.Contact
	// RoutingTable is a node's k-bucket table.
	RoutingTable = kademlia.RoutingTable
	// DisjointResult reports an S/Kademlia-style disjoint-path lookup.
	DisjointResult = kademlia.DisjointResult
)

// NewNode creates a node whose identifier is derived from its address.
func NewNode(cfg NodeConfig, addr Addr, net *Network) (*Node, error) {
	return kademlia.NewNode(cfg, addr, net)
}

// NewNodeWithID creates a node with an explicit identifier.
func NewNodeWithID(cfg NodeConfig, nodeID ID, addr Addr, net *Network) (*Node, error) {
	return kademlia.NewNodeWithID(cfg, nodeID, addr, net)
}

// Graphs and connectivity analysis.
type (
	// Graph is a directed connectivity graph.
	Graph = graph.Digraph
	// ConnectivityOptions configures the analyzer (sampling, algorithm,
	// workers).
	ConnectivityOptions = connectivity.Options
	// ConnectivityResult reports min/avg connectivity of one graph.
	ConnectivityResult = connectivity.Result
	// MaxflowAlgorithm selects Dinic or HIPR-style push-relabel.
	MaxflowAlgorithm = maxflow.Algorithm
	// Snapshot is a captured connectivity graph with node metadata.
	Snapshot = snapshot.Snapshot
)

// Max-flow algorithm choices.
const (
	Dinic       = maxflow.Dinic
	PushRelabel = maxflow.PushRelabel
)

// NewGraph returns an empty directed graph on n vertices.
func NewGraph(n int) *Graph { return graph.NewDigraph(n) }

// AnalyzeConnectivity computes the vertex connectivity of a graph.
func AnalyzeConnectivity(g *Graph, opts ConnectivityOptions) (ConnectivityResult, error) {
	a, err := connectivity.NewAnalyzer(opts)
	if err != nil {
		return ConnectivityResult{}, err
	}
	return a.Analyze(g), nil
}

// VertexConnectivity computes the exact kappa(D) with a full n(n-1) sweep.
func VertexConnectivity(g *Graph) int {
	return connectivity.MustNewAnalyzer(connectivity.Options{SampleFraction: 1.0, MinOnly: true}).Analyze(g).Min
}

// PairConnectivity computes kappa(v, w) for one non-adjacent pair.
func PairConnectivity(g *Graph, v, w int) (int, error) {
	return connectivity.Pair(g, v, w, maxflow.Dinic)
}

// Resilience converts a connectivity into the number of compromised nodes
// the network tolerates: r = kappa - 1 (Equation 2 of the paper).
func Resilience(kappa int) int { return connectivity.Resilience(kappa) }

// PairCut returns a minimum vertex cut separating w from v — the optimal
// attack against the pair in the paper's system model. Its size equals
// PairConnectivity(g, v, w).
func PairCut(g *Graph, v, w int) ([]int, error) { return connectivity.PairCut(g, v, w) }

// GraphCut returns a minimum vertex cut of the whole graph and the vertex
// pair it separates; ok is false for complete graphs, which have no cut.
func GraphCut(g *Graph, opts ConnectivityOptions) (cut []int, pair [2]int, ok bool, err error) {
	return connectivity.GraphCut(g, opts)
}

// RemoveVertices simulates compromising nodes: it returns a copy of g with
// the given vertices deleted and an old-to-new index mapping (-1 for
// removed vertices).
func RemoveVertices(g *Graph, remove []int) (*Graph, []int) {
	return connectivity.RemoveVertices(g, remove)
}

// RequiredConnectivity returns the kappa needed to tolerate a attackers.
func RequiredConnectivity(a int) int { return connectivity.RequiredConnectivity(a) }

// CaptureSnapshot builds the connectivity graph of the live nodes at the
// given virtual time.
func CaptureSnapshot(now time.Duration, nodes []*Node) *Snapshot {
	return snapshot.Capture(now, nodes)
}

// Scenario running (the paper's experiments).
type (
	// ScenarioConfig describes one simulation run.
	ScenarioConfig = scenario.Config
	// ScenarioResult is a run's measurement series.
	ScenarioResult = scenario.Result
	// SnapshotStat is one measurement point of a run.
	SnapshotStat = scenario.SnapshotStat
	// ChurnRate is an add/remove-per-minute churn scenario.
	ChurnRate = churn.Rate
	// Workload overrides traffic rates.
	Workload = traffic.Workload
	// Experiment bundles the runs behind one paper figure or table.
	Experiment = scenario.Experiment
	// Scale maps experiments onto a compute budget (paper, reduced, tiny).
	Scale = scenario.Scale
	// Series is a time series of measurements.
	Series = stats.Series
	// Summary holds mean/variance/RV statistics of a series window.
	Summary = stats.Summary
)

// The paper's churn scenarios.
var (
	Churn0_1   = churn.Rate0_1
	Churn1_1   = churn.Rate1_1
	Churn10_10 = churn.Rate10_10
)

// Adversarial node removal (the attack engine extending the paper's
// random churn to targeted strategies).
type (
	// AttackConfig describes one adversary: strategy, budget, strike
	// interval, and the eclipse target. Set ScenarioConfig.Attack to run
	// it during the churn-phase window.
	AttackConfig = attack.Config
	// AttackStrategy names a victim-selection policy.
	AttackStrategy = attack.Strategy
	// AttackVictim records one adversarial removal.
	AttackVictim = attack.Victim
)

// The built-in attack strategies.
const (
	AttackRandom  = attack.Random
	AttackDegree  = attack.Degree
	AttackCutset  = attack.Cutset
	AttackEclipse = attack.Eclipse
)

// AttackStrategies returns every built-in strategy in canonical order.
func AttackStrategies() []AttackStrategy { return attack.Strategies() }

// ParseAttackStrategies reads a comma-separated strategy list.
func ParseAttackStrategies(csv string) ([]AttackStrategy, error) {
	return attack.ParseStrategies(csv)
}

// AttackExperiment builds the strategy-comparison experiment at a scale:
// one attacked run per strategy, sharing one seed.
func AttackExperiment(s Scale, seed int64, strategies []AttackStrategy) Experiment {
	return s.AttackExperiment(seed, strategies)
}

// Built-in experiment scales.
var (
	PaperScale   = scenario.PaperScale
	ReducedScale = scenario.ReducedScale
	TinyScale    = scenario.TinyScale
)

// RunScenario executes one simulation and returns its measurements.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) { return scenario.Run(cfg) }

// RunExperiment executes every run of an experiment across GOMAXPROCS
// workers and returns the results in config order. Each run is
// deterministic in its own seed, so the results match a sequential
// execution. Config callbacks (Log, OnSnapshot) may be invoked
// concurrently from different runs; use RunExperimentJobs(e, 1) when
// callbacks require sequential execution.
func RunExperiment(e Experiment) ([]*ScenarioResult, error) { return scenario.RunAll(e.Configs) }

// RunExperimentJobs is RunExperiment with an explicit worker bound
// (<= 0 means GOMAXPROCS; 1 runs strictly sequentially).
func RunExperimentJobs(e Experiment, jobs int) ([]*ScenarioResult, error) {
	return scenario.RunAllJobs(e.Configs, jobs)
}

// ScaleByName resolves "paper", "reduced", or "tiny".
func ScaleByName(name string) (Scale, error) { return scenario.ScaleByName(name) }
