package kadre

import (
	"testing"
	"time"
)

func TestFacadeGraphAnalysis(t *testing.T) {
	// C6 as an undirected graph: kappa = 2.
	g := NewGraph(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
		g.AddEdge((i+1)%6, i)
	}
	if kappa := VertexConnectivity(g); kappa != 2 {
		t.Fatalf("VertexConnectivity(C6) = %d, want 2", kappa)
	}
	if r := Resilience(2); r != 1 {
		t.Fatalf("Resilience(2) = %d, want 1", r)
	}
	if need := RequiredConnectivity(3); need != 4 {
		t.Fatalf("RequiredConnectivity(3) = %d, want 4", need)
	}
	k, err := PairConnectivity(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("PairConnectivity(0,3) = %d, want 2", k)
	}
	res, err := AnalyzeConnectivity(g, ConnectivityOptions{SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Min != 2 || res.Avg != 2.0 {
		t.Fatalf("AnalyzeConnectivity = %+v", res)
	}
}

func TestFacadeNodeLifecycle(t *testing.T) {
	sim := NewSimulator(1)
	net := NewNetwork(sim, NetworkConfig{})
	cfg := NodeConfig{Bits: 64, K: 4, Alpha: 2, StalenessLimit: 1}
	var nodes []*Node
	for i := 0; i < 12; i++ {
		n, err := NewNode(cfg, Addr(i+1), net)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Join(nodes[0].Contact(), nil); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunUntil(5 * time.Minute)

	snap := CaptureSnapshot(sim.Now(), nodes)
	if snap.N() != 12 {
		t.Fatalf("snapshot size %d, want 12", snap.N())
	}
	res, err := AnalyzeConnectivity(snap.Graph, ConnectivityOptions{SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Min == 0 {
		t.Fatal("bootstrapped network is disconnected")
	}
}

func TestFacadeScenario(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		Name: "facade", Seed: 9, Size: 30, K: 4,
		Setup: 10 * time.Minute, Stabilize: 10 * time.Minute,
		SnapshotInterval: 10 * time.Minute, SampleFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no measurement points")
	}
	if res.Points[len(res.Points)-1].N != 30 {
		t.Fatalf("final size %d", res.Points[len(res.Points)-1].N)
	}
}

func TestFacadeScales(t *testing.T) {
	s, err := ScaleByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != TinyScale.Name {
		t.Fatal("scale mismatch")
	}
	if len(s.Experiments(1)) != 16 {
		t.Fatal("experiment registry incomplete")
	}
	if PaperScale.Small != 250 || PaperScale.Large != 2500 {
		t.Fatal("paper scale wrong")
	}
}

func TestFacadeIDs(t *testing.T) {
	a := HashID(160, []byte("x"))
	b, err := ParseID(160, a.String())
	if err != nil || !a.Equal(b) {
		t.Fatal("id round trip failed")
	}
	if _, err := NewID(160, []byte{1}); err == nil {
		t.Fatal("short id should fail")
	}
}

func TestFacadeChurnRates(t *testing.T) {
	if Churn0_1.String() != "0/1" || Churn1_1.String() != "1/1" || Churn10_10.String() != "10/10" {
		t.Fatal("churn rate constants wrong")
	}
	if LossHigh.TwoWayLoss() < 0.49 || LossHigh.TwoWayLoss() > 0.51 {
		t.Fatal("Table 1 high loss wrong")
	}
}

func TestFacadeAttack(t *testing.T) {
	if got := AttackStrategies(); len(got) != 4 || got[0] != AttackRandom || got[3] != AttackEclipse {
		t.Fatalf("strategy registry wrong: %v", got)
	}
	if _, err := ParseAttackStrategies("degree,borg"); err == nil {
		t.Fatal("unknown strategy should fail to parse")
	}
	cfg := ScenarioConfig{
		Name: "facade-attack", Seed: 1, Size: 16, K: 5, Staleness: 1,
		Setup: 4 * time.Minute, Stabilize: 6 * time.Minute,
		ChurnPhase: 10 * time.Minute, SnapshotInterval: 5 * time.Minute,
		SampleFraction: 0.2,
		Attack: AttackConfig{
			Strategy: AttackDegree, Budget: 4, Kills: 2, Interval: 5 * time.Minute,
		},
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackRemoved != 4 || len(res.Victims) != 4 {
		t.Fatalf("adversary removed %d (%d victims), want 4", res.AttackRemoved, len(res.Victims))
	}
	exp := AttackExperiment(TinyScale, 1, []AttackStrategy{AttackRandom, AttackCutset})
	if len(exp.Configs) != 2 || !exp.Configs[1].Attack.Enabled() {
		t.Fatalf("attack experiment malformed: %+v", exp.Configs)
	}
}
